//! Offline shim for serde's derive macros.
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (conversions to/from `serde::value::Value`) for:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   upstream's default representation).
//!
//! Supported field attributes: `#[serde(default)]`,
//! `#[serde(default = "path")]`, `#[serde(rename = "name")]`,
//! `#[serde(skip_serializing_if = "path")]`.
//!
//! The input item is parsed directly from the `proc_macro` token stream
//! (no `syn`/`quote` in this offline environment); generic parameters are
//! not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- item model ---------------------------------------------------------

struct Field {
    ident: String,
    key: String,
    default: Option<FieldDefault>,
    skip_ser_if: Option<String>,
}

enum FieldDefault {
    Trait,
    Path(String),
}

enum VariantData {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    ident: String,
    data: VariantData,
}

enum Kind {
    Unit,
    Struct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: Kind,
}

// ---- parsing ------------------------------------------------------------

struct SerdeAttrs {
    default: Option<FieldDefault>,
    rename: Option<String>,
    skip_ser_if: Option<String>,
}

impl SerdeAttrs {
    fn empty() -> Self {
        Self { default: None, rename: None, skip_ser_if: None }
    }
}

fn lit_str(tok: &TokenTree) -> Result<String, String> {
    match tok {
        TokenTree::Literal(l) => {
            let s = l.to_string();
            if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
                Ok(s[1..s.len() - 1].to_string())
            } else {
                Err(format!("expected string literal, got `{s}`"))
            }
        }
        other => Err(format!("expected string literal, got `{other}`")),
    }
}

/// Parse the inside of one `#[serde(...)]` group into `attrs`.
fn parse_serde_attr(stream: TokenStream, attrs: &mut SerdeAttrs) -> Result<(), String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            other => return Err(format!("unsupported serde attribute token `{other}`")),
        };
        let has_eq = matches!(toks.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=');
        match (name.as_str(), has_eq) {
            ("default", false) => {
                attrs.default = Some(FieldDefault::Trait);
                i += 1;
            }
            ("default", true) => {
                attrs.default = Some(FieldDefault::Path(lit_str(
                    toks.get(i + 2).ok_or("dangling `default =`")?,
                )?));
                i += 3;
            }
            ("rename", true) => {
                attrs.rename = Some(lit_str(toks.get(i + 2).ok_or("dangling `rename =`")?)?);
                i += 3;
            }
            ("skip_serializing_if", true) => {
                attrs.skip_ser_if = Some(lit_str(
                    toks.get(i + 2).ok_or("dangling `skip_serializing_if =`")?,
                )?);
                i += 3;
            }
            (other, _) => return Err(format!("unsupported serde attribute `{other}`")),
        }
    }
    Ok(())
}

/// Consume any `#[...]` attributes at `toks[*i]`, folding `#[serde(...)]`
/// contents into the returned attrs.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> Result<SerdeAttrs, String> {
    let mut attrs = SerdeAttrs::empty();
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let mut j = *i + 1;
        // Inner attribute marker `#!` (not expected on fields, but skip).
        if matches!(toks.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
            j += 1;
        }
        let group = match toks.get(j) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => return Err(format!("malformed attribute near `{other:?}`")),
        };
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                match inner.get(1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        parse_serde_attr(g.stream(), &mut attrs)?;
                    }
                    other => return Err(format!("malformed #[serde] attribute: `{other:?}`")),
                }
            }
        }
        *i = j + 1;
    }
    Ok(attrs)
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Skip one type expression: tokens until a `,` at angle-bracket depth 0.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Parse `name: Type, ...` named-field lists (struct bodies and struct
/// variants).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
            continue;
        }
        let attrs = take_attrs(&toks, &mut i)?;
        skip_vis(&toks, &mut i);
        let ident = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got `{other:?}`")),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{ident}`, got `{other:?}`")),
        }
        skip_type(&toks, &mut i);
        let key = attrs.rename.clone().unwrap_or_else(|| ident.clone());
        fields.push(Field {
            ident,
            key,
            default: attrs.default,
            skip_ser_if: attrs.skip_ser_if,
        });
    }
    Ok(fields)
}

/// Count the comma-separated entries of a tuple body `(A, B, ...)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
            continue;
        }
        let _attrs = take_attrs(&toks, &mut i)?;
        let ident = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got `{other:?}`")),
        };
        i += 1;
        let data = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantData::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantData::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantData::Unit,
        };
        // Skip an explicit discriminant `= expr` (until comma).
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < toks.len()
                && !matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        variants.push(Variant { ident, data });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let _ = take_attrs(&toks, &mut i)?;
    skip_vis(&toks, &mut i);
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got `{other:?}`")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got `{other:?}`")),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            other => return Err(format!("unsupported struct body: `{other:?}`")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unsupported enum body: `{other:?}`")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item { name, kind })
}

// ---- code generation ----------------------------------------------------

/// Serialize code for a list of named fields into a pushed-field vec;
/// `access` maps a field ident to the expression that borrows it.
fn gen_named_ser(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut out = String::new();
    for f in fields {
        let expr = access(&f.ident);
        let push = format!(
            "__fields.push((\"{key}\".to_string(), ::serde::Serialize::to_value({expr})));",
            key = f.key
        );
        if let Some(pred) = &f.skip_ser_if {
            out.push_str(&format!("if !({pred})({expr}) {{ {push} }}\n"));
        } else {
            out.push_str(&push);
            out.push('\n');
        }
    }
    out
}

/// Deserialize code producing a struct-literal field list from `__obj`.
fn gen_named_de(fields: &[Field], type_name: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let missing = match &f.default {
            Some(FieldDefault::Trait) => "::std::default::Default::default()".to_string(),
            Some(FieldDefault::Path(p)) => format!("{p}()"),
            None => format!(
                "return ::std::result::Result::Err(::serde::value::DeError::new(\
                 \"{type_name}: missing field `{key}`\"))",
                key = f.key
            ),
        };
        out.push_str(&format!(
            "{ident}: match __obj.iter().find(|(__k, _)| __k == \"{key}\") {{\n\
               ::std::option::Option::Some((_, __val)) => \
                 ::serde::Deserialize::from_value(__val)\
                 .map_err(|__e| __e.context(\"{type_name}.{key}\"))?,\n\
               ::std::option::Option::None => {missing},\n\
             }},\n",
            ident = f.ident,
            key = f.key,
        ));
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Unit => "::serde::value::Value::Null".to_string(),
        Kind::Struct(fields) => format!(
            "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = \
             ::std::vec::Vec::new();\n{}\n::serde::value::Value::Object(__fields)",
            gen_named_ser(fields, |id| format!("&self.{id}"))
        ),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::value::Value::Array(vec![{}])",
                items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.ident;
                match &v.data {
                    VariantData::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::value::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantData::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::value::Value::Object(vec![(\
                         \"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantData::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::value::Value::Object(vec![(\
                             \"{vn}\".to_string(), ::serde::value::Value::Array(vec![{vals}]))]),\n",
                            binds = binds.join(", "),
                            vals = vals.join(", "),
                        ));
                    }
                    VariantData::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.ident.clone()).collect();
                        let pushes = gen_named_ser(fields, |id| id.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                               let mut __fields: ::std::vec::Vec<(::std::string::String, \
                               ::serde::value::Value)> = ::std::vec::Vec::new();\n\
                               {pushes}\n\
                               ::serde::value::Value::Object(vec![(\"{vn}\".to_string(), \
                               ::serde::value::Value::Object(__fields))])\n\
                             }},\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Unit => format!("::std::result::Result::Ok({name})"),
        Kind::Struct(fields) => format!(
            "let __obj = __v.as_object().ok_or_else(|| ::serde::value::DeError::new(\
             format!(\"{name}: expected object, got {{}}\", __v.kind())))?;\n\
             ::std::result::Result::Ok({name} {{\n{}\n}})",
            gen_named_de(fields, name)
        ),
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)\
             .map_err(|__e| __e.context(\"{name}\"))?))"
        ),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(&__arr[{i}])\
                         .map_err(|__e| __e.context(\"{name}.{i}\"))?"
                    )
                })
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| ::serde::value::DeError::new(\
                 \"{name}: expected array\"))?;\n\
                 if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::value::DeError::new(\"{name}: expected {n} elements\")); }}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.ident;
                match &v.data {
                    VariantData::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        // Also allow `{"Variant": null}`.
                        data_arms.push_str(&format!(
                            "\"{vn}\" if __val.is_null() => \
                             ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantData::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__val)\
                         .map_err(|__e| __e.context(\"{name}::{vn}\"))?)),\n"
                    )),
                    VariantData::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(&__arr[{i}])\
                                     .map_err(|__e| __e.context(\"{name}::{vn}.{i}\"))?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                               let __arr = __val.as_array().ok_or_else(|| \
                               ::serde::value::DeError::new(\"{name}::{vn}: expected array\"))?;\n\
                               if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                               ::serde::value::DeError::new(\
                               \"{name}::{vn}: expected {n} elements\")); }}\n\
                               ::std::result::Result::Ok({name}::{vn}({items}))\n\
                             }},\n",
                            items = items.join(", ")
                        ));
                    }
                    VariantData::Named(fields) => {
                        let inner = gen_named_de(fields, &format!("{name}::{vn}"));
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                               let __obj = __val.as_object().ok_or_else(|| \
                               ::serde::value::DeError::new(\"{name}::{vn}: expected object\"))?;\n\
                               ::std::result::Result::Ok({name}::{vn} {{\n{inner}\n}})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                   ::serde::value::Value::Str(__s) => match __s.as_str() {{\n\
                     {unit_arms}\
                     __other => ::std::result::Result::Err(::serde::value::DeError::new(\
                     format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                   }},\n\
                   ::serde::value::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                     let (__tag, __val) = &__fields[0];\n\
                     match __tag.as_str() {{\n\
                       {data_arms}\
                       __other => ::std::result::Result::Err(::serde::value::DeError::new(\
                       format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                     }}\n\
                   }},\n\
                   __other => ::std::result::Result::Err(::serde::value::DeError::new(\
                   format!(\"{name}: expected string or single-key object, got {{}}\", \
                   __other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
           fn from_value(__v: &::serde::value::Value) -> \
           ::std::result::Result<Self, ::serde::value::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde shim derive generated invalid Rust"),
        Err(msg) => {
            let full = format!("serde shim derive: {msg}");
            format!("compile_error!({:?});", full)
                .parse()
                .expect("compile_error snippet parses")
        }
    }
}

/// Derive the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
