//! The shim's owned data model: a JSON-shaped tree.
//!
//! Object fields keep insertion order (a `Vec` of pairs, not a map) so
//! serialized output is stable and matches the declaration order of
//! derived structs.

use std::fmt;
use std::ops::Index;

/// A JSON-shaped value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Negative or explicitly signed integers.
    Int(i64),
    /// Non-negative integers (preserves full `u64` range).
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// As `u64` if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// As `i64` if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// As `f64` (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            _ => None,
        }
    }

    /// As `&str` for string values.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// As the array's elements.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As the object's fields (insertion order).
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match i64::try_from(*other) {
                    Ok(n) => self.as_i64() == Some(n),
                    Err(_) => self.as_u64() == <u64>::try_from(*other).ok(),
                }
            }
        }
    )*};
}

impl_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering (same text `serde_json::to_string` emits).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::UInt(n) => write!(f, "{n}"),
            Value::Float(x) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest round-trippable literal.
                    write!(f, "{x:?}")
                } else {
                    f.write_str("null")
                }
            }
            Value::Str(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Write `s` as a JSON string literal with escapes.
pub fn write_json_string(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

/// Deserialization error: a human-readable message, optionally prefixed
/// with field context by derived impls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// Prefix with context (`field x: …`), used by derives.
    pub fn context(self, what: impl fmt::Display) -> Self {
        Self { msg: format!("{what}: {}", self.msg) }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_missing_yields_null() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v["a"], 1u32);
        assert!(v["missing"].is_null());
        assert!(v["a"]["deeper"].is_null());
        assert!(v[3].is_null());
    }

    #[test]
    fn display_escapes_strings() {
        let v = Value::Str("a\"b\\c\nd".into());
        assert_eq!(v.to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn display_floats_round_trip() {
        assert_eq!(Value::Float(0.1).to_string(), "0.1");
        assert_eq!(Value::Float(1.0).to_string(), "1.0");
        assert_eq!(Value::Float(f64::NAN).to_string(), "null");
    }
}
