//! Offline shim for the `serde` crate.
//!
//! Instead of upstream's generic `Serializer`/`Deserializer` visitors,
//! this shim routes everything through one owned data model,
//! [`value::Value`] (a JSON-shaped tree). [`Serialize`] converts a type
//! *to* a `Value`, [`Deserialize`] builds a type *from* one. The derive
//! macros (re-exported from `serde_derive`) generate exactly those two
//! conversions; `serde_json` prints/parses `Value` as JSON text.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{DeError, Value};

/// Convert `self` into the shim data model.
pub trait Serialize {
    /// Owned tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Build `Self` from the shim data model.
pub trait Deserialize: Sized {
    /// Parse from an owned tree, with field-level error messages.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----------------------------------------------------

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| {
                    DeError::new(format!(
                        "expected unsigned integer, got {}",
                        v.kind()
                    ))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| {
                    DeError::new(format!("expected integer, got {}", v.kind()))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::new(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::new(format!("expected 2-tuple, got {}", other.kind()))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::new(format!("expected 3-tuple, got {}", other.kind()))),
        }
    }
}

impl<K: ToString + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&5u32.to_value()).unwrap(), Some(5));
    }

    #[test]
    fn numeric_coercions() {
        // Positive ints parse as UInt but must deserialize into i64/f64.
        assert_eq!(i64::from_value(&Value::UInt(9)).unwrap(), 9);
        assert_eq!(f64::from_value(&Value::UInt(9)).unwrap(), 9.0);
        assert_eq!(f64::from_value(&Value::Int(-3)).unwrap(), -3.0);
        assert_eq!(u32::from_value(&Value::Int(7)).unwrap(), 7);
        assert!(u32::from_value(&Value::Int(-7)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }
}
