//! Offline shim for the `rand_distr` crate: the [`Distribution`] trait
//! and the [`LogNormal`] distribution (via Box–Muller), which is all the
//! workload synthesiser uses.

use rand::Rng;

/// A distribution values of `T` can be sampled from.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error from invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// The standard normal via Box–Muller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u1 ∈ (0, 1] so ln(u1) is finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Normal distribution with mean `mu` and standard deviation `sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Build; `sigma` must be finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if sigma < 0.0 || sigma.is_nan() || !sigma.is_finite() || !mu.is_finite() {
            return Err(Error("Normal: bad parameters"));
        }
        Ok(Self { mu, sigma })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * StandardNormal.sample(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Build; `sigma` must be finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(Self { norm: Normal::new(mu, sigma)? })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_matches_moments() {
        // X ~ LogNormal(mu, sigma) has E[ln X] = mu, Var[ln X] = sigma².
        let (mu, sigma) = (1.5, 0.4);
        let d = LogNormal::new(mu, sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let logs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng).ln()).collect();
        let mean = logs.iter().sum::<f64>() / n as f64;
        let var = logs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - mu).abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.01, "sigma {}", var.sqrt());
    }

    #[test]
    fn invalid_sigma_rejected() {
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
        assert!(LogNormal::new(0.0, 1.0).is_ok());
    }
}
