//! Offline shim for the `rand` crate.
//!
//! Implements the slice of the rand 0.8 API this workspace uses:
//! [`Rng::gen_range`] over half-open and inclusive numeric ranges,
//! [`SeedableRng::seed_from_u64`], and the [`rngs::StdRng`] /
//! [`rngs::SmallRng`] generator types. Both generators are xoshiro256++,
//! seeded through splitmix64 exactly as upstream seeds its generators
//! from a `u64` (the algorithm differs from upstream's ChaCha12, so the
//! *streams* are not bit-compatible with real `rand` — only the API is).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Sample a value of a type with a canonical uniform distribution
    /// (`f64`/`f32` in `[0, 1)`, integers over their full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding interface; this shim only supports the `u64` entry point the
/// workspace uses.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a canonical "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range random values can be drawn from (mirror of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by rejection to avoid modulo bias.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = uniform_u64_below(rng, span);
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span + 1);
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::gen_standard(rng); // [0, 1)
                let v = self.start + u * (self.end - self.start);
                // Floating rounding can land exactly on `end`; clamp back.
                if v >= self.end { <$t>::max(self.start, self.end - (self.end - self.start) * <$t>::EPSILON) } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let u = <$t as Standard>::gen_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// xoshiro256++ core (Blackman & Vigna), seeded via splitmix64.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    fn from_u64(seed: u64) -> Self {
        // splitmix64 stream expands the seed into four state words.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        Self::from_u64(seed)
    }
}

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256PlusPlus};

    /// The default seeded generator (xoshiro256++ here).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256PlusPlus);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256PlusPlus::seed_from_u64(seed))
        }
    }

    /// The small/fast generator (same xoshiro256++ core in this shim).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256PlusPlus);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256PlusPlus::seed_from_u64(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let g: f32 = rng.gen_range(-0.05f32..=0.05);
            assert!((-0.05..=0.05).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_the_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn float_uniform_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
