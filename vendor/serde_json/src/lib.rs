//! Offline shim for the `serde_json` crate.
//!
//! Parses JSON text into the shim [`Value`] tree and prints values back
//! out (compact via `Display`, or pretty with two-space indent). The
//! generic entry points mirror upstream's signatures but route through
//! `serde::{Serialize, Deserialize}` shim traits.

use std::fmt;

pub use serde::value::Value;

/// Error raised while parsing or converting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset of the error in the input, when known.
    offset: Option<usize>,
}

impl Error {
    fn new(msg: impl Into<String>, offset: Option<usize>) -> Self {
        Self { msg: msg.into(), offset }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {at}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::value::DeError> for Error {
    fn from(e: serde::value::DeError) -> Self {
        Error::new(e.to_string(), None)
    }
}

/// `Result` alias matching upstream.
pub type Result<T> = std::result::Result<T, Error>;

// ---- serialization ------------------------------------------------------

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_string())
}

/// Serialize to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0).expect("fmt to String cannot fail");
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Build a typed value out of a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) -> fmt::Result {
    use fmt::Write;
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
            Ok(())
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                serde::value::write_json_string(out, k)?;
                out.push_str(": ");
                write_pretty(out, val, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
            Ok(())
        }
        other => write!(out, "{other}"),
    }
}

// ---- parsing ------------------------------------------------------------

/// Parse JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON bytes (must be UTF-8) into any deserializable type.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error::new(format!("invalid UTF-8: {e}"), Some(e.valid_up_to())))?;
    from_str(s)
}

fn parse_value_str(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters", Some(p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> Error {
        Error::new(msg, Some(self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a low surrogate.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(
                                self.err(format!("invalid escape `\\{}`", other as char))
                            )
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    if (c as u32) < 0x20 {
                        return Err(self.err("control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let n = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII slice is UTF-8");
        if is_float {
            let f: f64 = text
                .parse()
                .map_err(|_| self.err(format!("invalid number `{text}`")))?;
            Ok(Value::Float(f))
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Negative integer; fall back to float if out of i64 range.
            match text.parse::<i64>() {
                Ok(n) => Ok(Value::Int(n)),
                Err(_) => stripped
                    .parse::<f64>()
                    .map(|f| Value::Float(-f))
                    .map_err(|_| self.err(format!("invalid number `{text}`"))),
            }
        } else {
            match text.parse::<u64>() {
                Ok(n) => Ok(Value::UInt(n)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err(format!("invalid number `{text}`"))),
            }
        }
    }
}

// ---- json! macro --------------------------------------------------------

/// Minimal `json!` macro: builds a [`Value`] from a literal tree.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! literal serializes")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str::<Value>("null").unwrap(), Value::Null);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5e2").unwrap(), 250.0);
        assert_eq!(from_str::<String>(r#""a\nb""#).unwrap(), "a\nb");
    }

    #[test]
    fn parses_nested_structures() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x"], "b": {"c": null}}"#).unwrap();
        assert_eq!(v["a"][0], 1u32);
        assert_eq!(v["a"][1], 2.5f64);
        assert_eq!(v["a"][2], "x");
        assert!(v["b"]["c"].is_null());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>(r#""unterminated"#).is_err());
    }

    #[test]
    fn round_trips_compact_text() {
        let text = r#"{"name":"x","vals":[1,-2,3.5],"flag":true}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_print_indents() {
        let v: Value = from_str(r#"{"a":[1]}"#).unwrap();
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""A""#).unwrap(), "A");
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }
}
