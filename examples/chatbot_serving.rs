//! Chatbot serving: size a ShareGPT-style deployment with the simulator.
//!
//! The scenario the paper's introduction motivates: an online chat service
//! receiving Poisson request traffic, served by Qwen2.5-32B on one node
//! with 4×L20 GPUs. The example replays the same trace through gLLM, vLLM
//! and SGLang and prints the latency/throughput comparison — a miniature
//! of the paper's Figure 10.
//!
//! Run with: `cargo run --example chatbot_serving`

use gllm::model::{ClusterSpec, ModelConfig};
use gllm::sim::engine::EngineConfig;
use gllm::sim::{run_experiment, Deployment, SystemConfig};
use gllm::workload::{Dataset, Trace};

fn main() {
    let deployment = Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4));
    println!("deployment: Qwen2.5-32B on 4xL20 (PCIe), {} KV tokens\n", deployment.pp_kv_tokens());

    for rate in [1.0, 3.0, 6.0] {
        let trace = Trace::paper_online(Dataset::ShareGpt, rate, 7);
        println!("--- offered load: {rate} req/s ({} requests over 128 s) ---", trace.len());
        for sys in SystemConfig::paper_main() {
            let r = run_experiment(&trace, &sys, &deployment, &EngineConfig::default());
            println!(
                "  {:8}  TTFT {:7.1} ms   TPOT {:6.1} ms   E2EL {:6.2} s   tput {:6.0} tok/s   util {:4.1}%",
                r.system,
                r.report.mean_ttft_s * 1000.0,
                r.report.mean_tpot_s * 1000.0,
                r.report.mean_e2el_s,
                r.report.throughput_tok_s,
                r.mean_utilization * 100.0,
            );
        }
        println!();
    }
    println!("expected shape (paper Fig. 10): SGLang wins TTFT at low rates;");
    println!("gLLM sustains the highest load with the lowest TPOT/E2EL as rates grow.");
}
