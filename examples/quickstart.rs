//! Quickstart: serve a model with the gLLM runtime and stream tokens.
//!
//! Spins up the threaded pipeline-parallel runtime (driver + stage
//! workers) around the built-in CPU transformer, submits a few generation
//! requests with different sampling settings, streams the tokens back and
//! prints the serving metrics the paper reports (TTFT / TPOT / E2EL).
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;
use std::time::Duration;

use gllm::core::throttle::TokenThrottle;
use gllm::metrics::ServingReport;
use gllm::runtime::{GenRequest, RuntimeConfig, Server, StreamEvent};
use gllm::transformer::sampler::SamplingParams;

fn main() {
    // A 4-stage pipeline over the tiny built-in model: one driver thread
    // (stage 0 + scheduler + KV manager) and three stage workers.
    let server = Server::start(RuntimeConfig::tiny(4), Arc::new(TokenThrottle::default()))
        .expect("valid config");
    println!("gLLM runtime up: 4 pipeline stages, Token Throttling scheduler\n");

    // Three requests: greedy, top-k sampled, and a longer prompt.
    server
        .submit(GenRequest {
            id: 0,
            prompt: vec![12, 42, 7, 99],
            max_new: 8,
            params: SamplingParams::greedy(),
        })
        .expect("driver is running");
    server
        .submit(GenRequest {
            id: 1,
            prompt: vec![3, 1, 4, 1, 5, 9, 2, 6],
            max_new: 8,
            params: SamplingParams { temperature: 0.8, top_k: 40, top_p: 0.95, seed: 7 },
        })
        .expect("driver is running");
    server
        .submit(GenRequest {
            id: 2,
            prompt: (0..24).map(|i| (i * 11 % 256) as u32).collect(),
            max_new: 12,
            params: SamplingParams::greedy(),
        })
        .expect("driver is running");

    // Stream tokens as they are produced (the decoupled frontend).
    let mut open = 3;
    while open > 0 {
        match server.next_event(Duration::from_secs(30)) {
            Some(StreamEvent::Token { seq, token, finished }) => {
                println!("request {seq} -> token {token}{}", if finished { "  [done]" } else { "" });
                if finished {
                    open -= 1;
                }
            }
            Some(StreamEvent::Rejected { seq }) => {
                println!("request {seq} rejected (would not fit in KV)");
                open -= 1;
            }
            Some(StreamEvent::Failed { seq }) => {
                println!("request {seq} failed (runtime recovery gave up)");
                open -= 1;
            }
            None => panic!("runtime stalled"),
        }
    }

    let recorder = server.shutdown();
    let report = ServingReport::from_recorder(&recorder);
    println!("\nserving metrics:");
    println!("  requests finished: {}", report.finished_requests);
    println!("  mean TTFT: {:.2} ms", report.mean_ttft_s * 1000.0);
    println!("  mean TPOT: {:.2} ms", report.mean_tpot_s * 1000.0);
    println!("  mean E2EL: {:.2} ms", report.mean_e2el_s * 1000.0);
    println!("  throughput: {:.0} tok/s", report.throughput_tok_s);
}
