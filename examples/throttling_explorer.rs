//! Throttling explorer: the TTFT/TPOT trade-off behind the `#T`
//! hyper-parameter.
//!
//! Token Throttling spreads pending prefill tokens over `#T` iterations
//! (Eq. 1). Small `#T` prefills aggressively (good TTFT, bad TPOT); large
//! `#T` smooths batches (bad TTFT, good TPOT) — the §4.4 discussion of
//! tuning `#T` to trade TTFT against TPOT under an SLO. This example makes
//! that dial tangible, mirroring the `#T` panel of Figure 16.
//!
//! Run with: `cargo run --example throttling_explorer`

use gllm::core::throttle::ThrottleConfig;
use gllm::model::{ClusterSpec, ModelConfig};
use gllm::sim::engine::EngineConfig;
use gllm::sim::{run_experiment, Deployment, SystemConfig};
use gllm::workload::{Dataset, Trace};

fn main() {
    let deployment = Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4));
    let trace = Trace::paper_online(Dataset::ShareGpt, 5.0, 21);
    println!("Qwen2.5-32B / 4xL20 / sharegpt @ 5 req/s — sweeping #T\n");
    println!("{:>4}  {:>10}  {:>10}  {:>9}  {:>12}", "#T", "TTFT (ms)", "TPOT (ms)", "E2EL (s)", "tput (tok/s)");
    for iter_t in [1, 2, 4, 8, 16, 32] {
        let sys = SystemConfig::gllm_with(ThrottleConfig { iter_t, ..Default::default() });
        let r = run_experiment(&trace, &sys, &deployment, &EngineConfig::default());
        println!(
            "{:>4}  {:>10.1}  {:>10.1}  {:>9.2}  {:>12.0}",
            iter_t,
            r.report.mean_ttft_s * 1000.0,
            r.report.mean_tpot_s * 1000.0,
            r.report.mean_e2el_s,
            r.report.throughput_tok_s,
        );
    }
    println!("\nexpected shape (paper Fig. 16): TPOT and E2EL improve with #T while");
    println!("TTFT degrades slowly; #T = 8 is the paper's default sweet spot.");
}
