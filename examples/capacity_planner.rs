//! Capacity planner: how much traffic can a deployment sustain under an
//! SLO?
//!
//! The operator's question behind the paper's Figure 14: given a cluster,
//! a model and a joint TTFT/TPOT service-level objective, what request
//! rate can each serving system sustain with ≥ 80 % SLO attainment, and
//! what is the absolute throughput ceiling? This example answers both for
//! a cross-node Llama-3.1-100B deployment on A800 nodes.
//!
//! Run with: `cargo run --example capacity_planner`

use gllm::metrics::SloSpec;
use gllm::model::{ClusterSpec, ModelConfig};
use gllm::sim::capacity::max_throughput;
use gllm::sim::engine::EngineConfig;
use gllm::sim::{run_experiment, Deployment, SystemConfig};
use gllm::workload::{Dataset, Trace};

fn main() {
    let deployment =
        Deployment::new(ModelConfig::llama3_1_100b(), ClusterSpec::cross_node_a800(4));
    // The paper's ShareGPT SLO with the substrate's 1.6x TPOT scaling
    // (the 100B decode floor sits above 100 ms in this cost model; see
    // EXPERIMENTS.md).
    let slo = SloSpec::from_ms(2500.0, 160.0);
    println!("deployment: Llama-3.1-100B on 4 A800 nodes over a 73 Gbps network");
    println!("SLO: TTFT <= {:.0} ms, TPOT <= {:.0} ms\n", slo.ttft_s * 1000.0, slo.tpot_s * 1000.0);

    for sys in [SystemConfig::gllm(), SystemConfig::vllm()] {
        // SLO-constrained capacity: highest swept rate with >= 80%.
        let mut slo_rate = 0.0f64;
        for rate in [0.25, 0.5, 0.75, 1.0, 1.25, 1.5] {
            let trace = Trace::paper_online(Dataset::ShareGpt, rate, 99);
            let r = run_experiment(&trace, &sys, &deployment, &EngineConfig::default());
            let att = r.slo_attainment(slo);
            println!("  {:6} @ {:4.2} req/s: attainment {:5.1}%", sys.name, rate, att * 100.0);
            if att >= 0.8 {
                slo_rate = slo_rate.max(rate);
            }
        }
        // Raw throughput ceiling (paper §4.3 methodology).
        let cap = max_throughput(&sys, &deployment, Dataset::ShareGpt, 0.5, 99);
        println!(
            "  => {}: plan for {:.2} req/s under SLO; hard ceiling {:.0} tok/s (at {:.2} req/s)\n",
            sys.name, slo_rate, cap.max_throughput_tok_s, cap.at_rate
        );
    }
    println!("expected shape (paper Fig. 14): gLLM sustains ~1.8x the SLO-compliant rate of vLLM.");
}
