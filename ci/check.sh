#!/usr/bin/env sh
# The full local gate: static analysis, build, test, lint. Run from the
# repo root. Everything is offline (all dependencies are vendored in
# vendor/).
set -eux

# Stage 1: in-tree static analysis (unit newtypes, panic-freedom, sim
# determinism, lock discipline, vendor hygiene, plus the v2 dataflow
# families: lock-order, newtype-escape, float-determinism and
# stale-suppression). Fails fast before the release build; emits a SARIF
# report and verifies the ratchet baseline (counts may only go down).
# `--list-checks` documents the families.
cargo run -p gllm-lint -- --deny all \
    --baseline ci/lint-baseline.json \
    --format sarif --output lint.sarif

# The linter must hold itself to its own panic-freedom and
# float-determinism rules (self-clean).
cargo run -p gllm-lint -- --paths crates/lint --deny all

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

# Stage 1.5: fault matrix. The chaos suite injects seeded faults (worker
# kills, dropped/delayed activations, KV reservation failures) into the
# threaded runtime and requires every recovered run to be bit-identical
# to the fault-free run — or a structured per-request rejection, never a
# panic or an indefinite stall. Runs in release: recovery respawns full
# pipeline stages, which is slow unoptimized.
cargo test -q --release -p gllm-runtime --test chaos

# Stage 2: perf self-benchmark. Times every figure family's sweep serial
# vs parallel vs the unoptimized baseline, writes BENCH_sweep.json at the
# repo root, and exits nonzero if the parallel sweep's output ever
# diverges from the serial run (the harness's bit-identity guarantee).
cargo run --release -p gllm-bench --bin perf_harness -- --quick
