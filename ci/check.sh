#!/usr/bin/env sh
# The full local gate: build, test, lint. Run from the repo root.
# Everything is offline (all dependencies are vendored in vendor/).
set -eux

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
