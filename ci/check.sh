#!/usr/bin/env sh
# The full local gate: static analysis, build, test, lint. Run from the
# repo root. Everything is offline (all dependencies are vendored in
# vendor/).
set -eux

# Stage 1: in-tree static analysis (unit newtypes, panic-freedom, sim
# determinism, lock discipline, vendor hygiene). Fails fast before the
# release build. `--list-checks` documents the families.
cargo run -p gllm-lint -- --deny

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
