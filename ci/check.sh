#!/usr/bin/env sh
# The full local gate: static analysis, build, test, lint. Run from the
# repo root. Everything is offline (all dependencies are vendored in
# vendor/).
set -eux

# Stage 1: in-tree static analysis (unit newtypes, panic-freedom, sim
# determinism, lock discipline, vendor hygiene). Fails fast before the
# release build. `--list-checks` documents the families.
cargo run -p gllm-lint -- --deny

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

# Stage 2: perf self-benchmark. Times every figure family's sweep serial
# vs parallel vs the unoptimized baseline, writes BENCH_sweep.json at the
# repo root, and exits nonzero if the parallel sweep's output ever
# diverges from the serial run (the harness's bit-identity guarantee).
cargo run --release -p gllm-bench --bin perf_harness -- --quick
