//! Cross-crate functional equivalence: the Table 1 claim, end to end.
//!
//! Whatever the scheduler, the chunking, the pipeline depth or the batch
//! composition, generated tokens must be bit-identical to the
//! single-process reference model. These tests drive the *threaded
//! runtime* (real activations over channels) against `CausalLM`.

use std::sync::Arc;

use gllm::core::sarathi::SarathiServe;
use gllm::core::Tokens;
use gllm::core::throttle::{ThrottleConfig, TokenThrottle};
use gllm::core::SchedulePolicy;
use gllm::model::ModelConfig;
use gllm::runtime::{GenRequest, RuntimeConfig, Server};
use gllm::transformer::sampler::SamplingParams;
use gllm::transformer::CausalLM;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_requests(seed: u64, n: usize, max_new: usize) -> Vec<GenRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let len = rng.gen_range(3..40);
            GenRequest {
                id: i as u64,
                prompt: (0..len).map(|_| rng.gen_range(0..256)).collect(),
                max_new: rng.gen_range(1..=max_new),
                params: SamplingParams::greedy(),
            }
        })
        .collect()
}

fn reference(reqs: &[GenRequest]) -> Vec<Vec<u32>> {
    let mut lm = CausalLM::new(ModelConfig::tiny(), 1, 1024, 4, 2024);
    reqs.iter()
        .map(|r| {
            let out = lm
                .generate(r.id, &r.prompt, r.max_new, 4096, &r.params)
                .expect("reference generation");
            lm.release(r.id).expect("release");
            out
        })
        .collect()
}

fn serve(reqs: &[GenRequest], stages: usize, policy: Arc<dyn SchedulePolicy>) -> Vec<Vec<u32>> {
    let cfg = RuntimeConfig { kv_blocks: 1024, ..RuntimeConfig::tiny(stages) };
    let server = Server::start(cfg, policy).expect("valid config");
    let map = server.generate_all(reqs.to_vec()).expect("runtime stalled");
    server.shutdown();
    (0..reqs.len()).map(|i| map[&(i as u64)].clone()).collect()
}

#[test]
fn every_scheduler_and_depth_reproduces_reference_outputs() {
    let reqs = random_requests(11, 12, 10);
    let expected = reference(&reqs);
    for stages in [1usize, 2, 4] {
        let policies: Vec<(&str, Arc<dyn SchedulePolicy>)> = vec![
            ("throttle", Arc::new(TokenThrottle::default())),
            ("sarathi", Arc::new(SarathiServe::default())),
            ("throttle-small-chunks", Arc::new(TokenThrottle::new(ThrottleConfig {
                max_p: Tokens(8),
                min_p: Tokens(2),
                ..Default::default()
            }))),
        ];
        for (name, policy) in policies {
            let got = serve(&reqs, stages, policy);
            assert_eq!(got, expected, "{name} at {stages} stages changed outputs");
        }
    }
}

#[test]
fn stochastic_sampling_is_batch_invariant() {
    // Even with temperature sampling, per-(seq, step) derived randomness
    // makes outputs independent of scheduling.
    let mut reqs = random_requests(13, 8, 8);
    for r in reqs.iter_mut() {
        r.params = SamplingParams { temperature: 0.9, top_k: 20, top_p: 0.9, seed: 5 };
    }
    let expected = reference(&reqs);
    let a = serve(&reqs, 2, Arc::new(TokenThrottle::default()));
    let b = serve(&reqs, 3, Arc::new(SarathiServe::new(Tokens(16))));
    assert_eq!(a, expected);
    assert_eq!(b, expected);
}

#[test]
fn tiny_chunk_budget_still_converges_to_identical_outputs() {
    // Degenerate chunking (budget 4 tokens) forces many-chunk prefills.
    let reqs = random_requests(17, 6, 6);
    let expected = reference(&reqs);
    let got = serve(&reqs, 2, Arc::new(SarathiServe::new(Tokens(4))));
    assert_eq!(got, expected);
}

#[test]
fn preemption_under_tight_kv_does_not_corrupt_outputs() {
    let reqs = random_requests(19, 6, 8);
    let expected = reference(&reqs);
    // ~45 tokens of KV for ~6 concurrent sequences: constant preemption.
    let cfg = RuntimeConfig { kv_blocks: 32, ..RuntimeConfig::tiny(2) };
    let server = Server::start(cfg, Arc::new(SarathiServe::default())).expect("valid config");
    let map = server.generate_all(reqs.to_vec()).expect("runtime stalled");
    let rec = server.shutdown();
    for (i, e) in expected.iter().enumerate() {
        assert_eq!(&map[&(i as u64)], e, "request {i}");
    }
    assert_eq!(rec.finished_count(), reqs.len());
}
