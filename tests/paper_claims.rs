//! The paper's headline claims, asserted as integration tests against the
//! discrete-event simulator. Each test names the paper section it checks.
//! Absolute numbers are substrate-dependent; the assertions are about
//! *orderings and shapes*, which is what the reproduction preserves.

use gllm::model::{ClusterSpec, ModelConfig};
use gllm::sim::capacity::max_throughput;
use gllm::sim::engine::EngineConfig;
use gllm::sim::{run_experiment, Deployment, SystemConfig};
use gllm::workload::{Dataset, Trace};

fn l20_32b() -> Deployment {
    Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4))
}

fn quiet() -> EngineConfig {
    EngineConfig {
        record_token_trace: false,
        record_utilization: false,
        ..EngineConfig::default()
    }
}

/// §1/§4.2: gLLM delivers higher maximum throughput than vLLM (pipeline
/// baseline) on both datasets.
#[test]
fn gllm_out_throughputs_vllm_at_saturation() {
    let d = l20_32b();
    for dataset in [Dataset::ShareGpt, Dataset::Azure] {
        let g = max_throughput(&SystemConfig::gllm(), &d, dataset, 1.0, 42);
        let v = max_throughput(&SystemConfig::vllm(), &d, dataset, 1.0, 42);
        assert!(
            g.max_throughput_tok_s > v.max_throughput_tok_s * 1.05,
            "{dataset:?}: gLLM {} !> vLLM {}",
            g.max_throughput_tok_s,
            v.max_throughput_tok_s
        );
    }
}

/// §4.2 point (5): tensor parallelism collapses cross-node; gLLM's
/// advantage over SGLang is largest there.
#[test]
fn sglang_advantage_inverts_cross_node() {
    let model = ModelConfig::qwen2_5_14b();
    let intra = Deployment::new(model.clone(), ClusterSpec::intra_node_l20(4));
    let cross = Deployment::new(model, ClusterSpec::cross_node_a100(4));
    let rate = 4.0;
    let trace = Trace::paper_online(Dataset::ShareGpt, rate, 9);
    let cfg = quiet();
    let s_intra = run_experiment(&trace, &SystemConfig::sglang(), &intra, &cfg);
    let g_intra = run_experiment(&trace, &SystemConfig::gllm(), &intra, &cfg);
    let s_cross = run_experiment(&trace, &SystemConfig::sglang(), &cross, &cfg);
    let g_cross = run_experiment(&trace, &SystemConfig::gllm(), &cross, &cfg);
    // Cross-node, gLLM must dominate SGLang outright.
    assert!(g_cross.report.mean_e2el_s < s_cross.report.mean_e2el_s);
    assert!(g_cross.report.throughput_tok_s > s_cross.report.throughput_tok_s);
    // And SGLang's relative standing must degrade from intra to cross.
    let intra_ratio = s_intra.report.mean_e2el_s / g_intra.report.mean_e2el_s;
    let cross_ratio = s_cross.report.mean_e2el_s / g_cross.report.mean_e2el_s;
    assert!(
        cross_ratio > intra_ratio,
        "TP should get relatively worse cross-node: {intra_ratio} -> {cross_ratio}"
    );
}

/// §2 (Fig. 1): Sarathi's batched-token trace is more volatile than
/// gLLM's on the same workload.
#[test]
fn token_volatility_ordering_matches_figure_1() {
    let d = l20_32b();
    let trace = Trace::paper_online(Dataset::ShareGpt, 6.0, 2025);
    let cfg = EngineConfig::default();
    let v = run_experiment(&trace, &SystemConfig::vllm(), &d, &cfg);
    let g = run_experiment(&trace, &SystemConfig::gllm(), &d, &cfg);
    assert!(v.token_trace.total_tokens_cv() > 1.5 * g.token_trace.total_tokens_cv());
}

/// §4.5 (Fig. 15): the ablation ordering — full gLLM beats both ablated
/// variants on E2EL in their respective stress regimes, and the gLLM
/// runtime beats vLLM even with Sarathi's policy (w/ CK).
#[test]
fn ablation_orderings_hold() {
    let d = l20_32b();
    let cfg = quiet();
    // WT regime: bursty short prompts.
    let trace = Trace::paper_online(Dataset::ShareGpt, 6.0, 1005);
    let g = run_experiment(&trace, &SystemConfig::gllm(), &d, &cfg);
    let wo_wt = run_experiment(&trace, &SystemConfig::gllm_without_wt(), &d, &cfg);
    assert!(wo_wt.report.mean_tpot_s > g.report.mean_tpot_s * 1.2, "WT should matter");
    // UT regime: long Azure prompts filling KV.
    let trace = Trace::paper_online(Dataset::Azure, 3.0, 1005);
    let g = run_experiment(&trace, &SystemConfig::gllm(), &d, &cfg);
    let wo_ut = run_experiment(&trace, &SystemConfig::gllm_without_ut(), &d, &cfg);
    assert!(wo_ut.report.mean_e2el_s > g.report.mean_e2el_s * 1.1, "UT should matter");
    // Runtime isolation: w/ CK > vLLM at the same policy.
    let ck = run_experiment(&trace, &SystemConfig::gllm_with_ck(), &d, &cfg);
    let v = run_experiment(&trace, &SystemConfig::vllm(), &d, &cfg);
    assert!(ck.report.throughput_tok_s > v.report.throughput_tok_s);
    assert!(ck.report.mean_e2el_s < v.report.mean_e2el_s);
}

/// §4.6 (Fig. 16): growing #T improves TPOT (smoother batches) while #T=1
/// (eager prefill) hurts it.
#[test]
fn iter_t_trades_ttft_for_tpot() {
    use gllm::core::throttle::ThrottleConfig;
    let d = l20_32b();
    let trace = Trace::paper_online(Dataset::ShareGpt, 5.0, 21);
    let cfg = quiet();
    let run_t = |iter_t| {
        let sys = SystemConfig::gllm_with(ThrottleConfig { iter_t, ..Default::default() });
        run_experiment(&trace, &sys, &d, &cfg).report
    };
    let t1 = run_t(1);
    let t8 = run_t(8);
    assert!(t1.mean_tpot_s > t8.mean_tpot_s, "eager prefill must hurt TPOT");
    assert!(t1.mean_ttft_s < t8.mean_ttft_s * 1.5, "TTFT should not explode with #T=8");
}

/// §2.2 background: historical baselines order as the literature says —
/// batch-level (FasterTransformer) < iteration-level with whole prompts
/// (Orca) ≤ chunked hybrid (Sarathi/vLLM) on end-to-end latency.
#[test]
fn historical_baseline_ordering() {
    let d = l20_32b();
    let trace = Trace::paper_online(Dataset::ShareGpt, 2.0, 33);
    let cfg = quiet();
    let ft = run_experiment(&trace, &SystemConfig::faster_transformer(), &d, &cfg);
    let orca = run_experiment(&trace, &SystemConfig::orca(), &d, &cfg);
    let vllm = run_experiment(&trace, &SystemConfig::vllm(), &d, &cfg);
    assert!(ft.report.mean_e2el_s > orca.report.mean_e2el_s, "batch-level worst");
    assert!(orca.report.mean_ttft_s > vllm.report.mean_ttft_s * 0.9);
    assert!(vllm.report.finished_requests == trace.len());
}
